package tlsmini

import (
	"math/rand"
	"time"
)

// Identity is a server certificate with its private key. Chain models the
// full certificate chain as sent on the wire: real chains observed at
// public resolvers range from ~800 bytes to several kilobytes, which is
// what makes QUIC's traffic-amplification limit bite for some resolvers
// (paper §3.1). Keys follow the Ed25519 layout (32-byte public key,
// seed||public 64-byte private key, 64-byte signatures) but are the
// simulation stand-ins of simcrypto.go.
type Identity struct {
	Name       string
	PublicKey  []byte
	PrivateKey []byte
	Chain      []byte
}

// GenerateIdentity creates a server identity whose chain blob has the
// given total size. chainSize values below the minimal encoding are
// clamped.
func GenerateIdentity(rng *rand.Rand, name string, chainSize int) *Identity {
	// Draw exactly 32 bytes, matching what ed25519.GenerateKey consumed
	// from rng in earlier versions, to keep the deterministic stream
	// aligned.
	var seed [32]byte
	rng.Read(seed[:])
	pub := simSigKey(seed)
	priv := make([]byte, 64)
	copy(priv, seed[:])
	copy(priv[32:], pub[:])
	minSize := len(name) + sigPublicKeySize + sigSize + 16
	if chainSize < minSize {
		chainSize = minSize
	}
	chain := make([]byte, chainSize)
	copy(chain, name)
	copy(chain[len(name):], pub[:])
	rng.Read(chain[len(name)+len(pub):])
	return &Identity{Name: name, PublicKey: priv[32:], PrivateKey: priv, Chain: chain}
}

// Session is a resumable TLS session as seen by the client.
type Session struct {
	ServerName string
	Ticket     []byte
	Secret     []byte // resumption PSK
	ALPN       string
	IssuedAt   time.Duration // virtual time
	Lifetime   time.Duration
	EarlyData  bool // server allows 0-RTT with this ticket
}

// Expired reports whether the session is no longer usable at now.
func (s *Session) Expired(now time.Duration) bool {
	return now-s.IssuedAt > s.Lifetime
}

// SessionCache stores client-side sessions keyed by server name. The
// zero value is not usable; use NewSessionCache.
type SessionCache struct {
	m map[string]*Session
}

// NewSessionCache returns an empty cache.
func NewSessionCache() *SessionCache { return &SessionCache{m: make(map[string]*Session)} }

// Get returns a non-expired session for serverName, if any.
func (c *SessionCache) Get(serverName string, now time.Duration) *Session {
	s := c.m[serverName]
	if s == nil || s.Expired(now) {
		return nil
	}
	return s
}

// Put stores (replacing) the session for its server name.
func (c *SessionCache) Put(s *Session) { c.m[s.ServerName] = s }

// Forget drops the session for serverName.
func (c *SessionCache) Forget(serverName string) { delete(c.m, serverName) }

// Len reports the number of cached sessions.
func (c *SessionCache) Len() int { return len(c.m) }

// ticketState is the server-side view of an issued ticket.
type ticketState struct {
	secret    []byte
	alpn      string
	issuedAt  time.Duration
	lifetime  time.Duration
	earlyData bool
}

// TicketStore holds server-side resumption state.
type TicketStore struct {
	m map[string]*ticketState
}

// NewTicketStore returns an empty store.
func NewTicketStore() *TicketStore { return &TicketStore{m: make(map[string]*ticketState)} }

func (t *TicketStore) put(ticket []byte, st *ticketState) { t.m[string(ticket)] = st }

func (t *TicketStore) get(ticket []byte, now time.Duration) *ticketState {
	st := t.m[string(ticket)]
	if st == nil || now-st.issuedAt > st.lifetime {
		return nil
	}
	return st
}

// Len reports the number of live tickets.
func (t *TicketStore) Len() int { return len(t.m) }
