// Package tlsmini implements a TLS 1.3-shaped handshake protocol with
// real cryptography (X25519 key exchange, HKDF-SHA256 key schedule,
// AES-128-GCM record protection, Ed25519 certificate signatures).
//
// The protocol self-interoperates within this repository; it is not wire
// compatible with RFC 8446, but it preserves everything the paper
// measures: the number of round trips (one server flight in TLS 1.3, two
// in the TLS 1.2 emulation mode), session resumption via tickets with the
// standard 7-day maximum lifetime, 0-RTT early data, ALPN, and message
// sizes in the same ballpark as real stacks.
//
// The engine (Engine) is transport agnostic: internal/tcpsim carries its
// messages in a record layer (Conn), while internal/quic carries them in
// CRYPTO frames and exports traffic secrets for packet protection.
package tlsmini

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
)

const hashLen = sha256.Size

// hkdfExtract implements HKDF-Extract with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	if salt == nil {
		salt = make([]byte, hashLen)
	}
	if ikm == nil {
		ikm = make([]byte, hashLen)
	}
	m := hmac.New(sha256.New, salt)
	m.Write(ikm)
	return m.Sum(nil)
}

// hkdfExpand implements HKDF-Expand with SHA-256.
func hkdfExpand(prk []byte, info string, length int) []byte {
	var out []byte
	var block []byte
	counter := byte(1)
	for len(out) < length {
		m := hmac.New(sha256.New, prk)
		m.Write(block)
		m.Write([]byte(info))
		m.Write([]byte{counter})
		block = m.Sum(nil)
		out = append(out, block...)
		counter++
	}
	return out[:length]
}

// deriveSecret is the RFC 8446 Derive-Secret analogue: expand with a
// label bound to a transcript hash.
func deriveSecret(secret []byte, label string, transcriptHash []byte) []byte {
	return hkdfExpand(secret, "tls13 "+label+string(transcriptHash), hashLen)
}

// trafficKeys derives the AEAD key and IV from a traffic secret.
func trafficKeys(secret []byte) (key, iv []byte) {
	return hkdfExpand(secret, "key", 16), hkdfExpand(secret, "iv", 12)
}

// aeadSeal encrypts plaintext with AES-128-GCM using the per-record nonce
// built from iv and seq.
func aeadSeal(key, iv []byte, seq uint64, plaintext, aad []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err) // key length is fixed at 16
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return gcm.Seal(nil, nonceFor(iv, seq), plaintext, aad)
}

// aeadOpen decrypts a record sealed by aeadSeal.
func aeadOpen(key, iv []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	return gcm.Open(nil, nonceFor(iv, seq), ciphertext, aad)
}

func nonceFor(iv []byte, seq uint64) []byte {
	nonce := make([]byte, 12)
	copy(nonce, iv)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	for i := 0; i < 8; i++ {
		nonce[4+i] ^= seqb[i]
	}
	return nonce
}

// aeadOverhead is the GCM tag size added to every protected record.
const aeadOverhead = 16

// hmacSum computes HMAC-SHA256(key, data).
func hmacSum(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// hmacEqual compares MACs in constant time.
func hmacEqual(a, b []byte) bool { return hmac.Equal(a, b) }
