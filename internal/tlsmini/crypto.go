// Package tlsmini implements a TLS 1.3-shaped handshake protocol with a
// real HKDF-SHA256 key schedule and AES-128-GCM record protection, over
// simulation stand-ins for the public-key operations (hash-based key
// exchange and signatures with X25519/Ed25519 wire sizes; see
// simcrypto.go for why and for the security caveat).
//
// The protocol self-interoperates within this repository; it is not wire
// compatible with RFC 8446, but it preserves everything the paper
// measures: the number of round trips (one server flight in TLS 1.3, two
// in the TLS 1.2 emulation mode), session resumption via tickets with the
// standard 7-day maximum lifetime, 0-RTT early data, ALPN, and message
// sizes in the same ballpark as real stacks.
//
// The engine (Engine) is transport agnostic: internal/tcpsim carries its
// messages in a record layer (Conn), while internal/quic carries them in
// CRYPTO frames and exports traffic secrets for packet protection.
package tlsmini

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"io"
)

const hashLen = sha256.Size

var zeroHash [hashLen]byte

// hmacShort computes HMAC-SHA256(key, p1||p2||p3) for the short inputs
// of the HKDF key schedule entirely on the stack: the handshake derives
// dozens of secrets per connection, and the streaming crypto/hmac
// construction costs several heap allocations per call. Inputs that
// exceed the stack buffer fall back to crypto/hmac; outputs are
// identical either way.
func hmacShort(key, p1, p2, p3 []byte) (out [hashLen]byte) {
	total := len(p1) + len(p2) + len(p3)
	if len(key) > 64 || total > 160 {
		m := hmac.New(sha256.New, key)
		m.Write(p1)
		m.Write(p2)
		m.Write(p3)
		// Summing into out[:0] would make the named return escape to the
		// heap on every call, including the common stack path below.
		copy(out[:], m.Sum(nil))
		return out
	}
	var buf [224]byte // 64-byte padded key block + up to 160 bytes of message
	for i := range key {
		buf[i] = key[i] ^ 0x36
	}
	for i := len(key); i < 64; i++ {
		buf[i] = 0x36
	}
	n := 64
	n += copy(buf[n:], p1)
	n += copy(buf[n:], p2)
	n += copy(buf[n:], p3)
	inner := sha256.Sum256(buf[:n])
	for i := 0; i < 64; i++ {
		buf[i] ^= 0x36 ^ 0x5c // ipad block -> opad block
	}
	copy(buf[64:], inner[:])
	return sha256.Sum256(buf[:64+hashLen])
}

// hkdfExtract implements HKDF-Extract with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	s := hkdfExtractShort(salt, ikm)
	out := make([]byte, hashLen)
	copy(out, s[:])
	return out
}

// hkdfExtractShort is hkdfExtract returned by value, for callers that
// use the pseudo-random key transiently (binder-key chains).
func hkdfExtractShort(salt, ikm []byte) [hashLen]byte {
	if salt == nil {
		salt = zeroHash[:]
	}
	if ikm == nil {
		ikm = zeroHash[:]
	}
	return hmacShort(salt, ikm, nil, nil)
}

// expandBlock computes one HKDF-Expand output block,
// HMAC(prk, prev || label1 || label2 || context || counter), entirely on
// the stack for the short inputs of the TLS key schedule. Taking the
// label pieces as strings avoids both the "tls13 "+label concatenation
// and the []byte(info) conversion that a generic info parameter costs.
func expandBlock(prk, prev []byte, label1, label2 string, context []byte, counter byte) (out [hashLen]byte) {
	total := len(prev) + len(label1) + len(label2) + len(context) + 1
	if len(prk) > 64 || total > 160 {
		m := hmac.New(sha256.New, prk)
		m.Write(prev)
		io.WriteString(m, label1)
		io.WriteString(m, label2)
		m.Write(context)
		m.Write([]byte{counter})
		copy(out[:], m.Sum(nil))
		return out
	}
	var buf [224]byte // 64-byte padded key block + up to 160 bytes of message
	for i := range prk {
		buf[i] = prk[i] ^ 0x36
	}
	for i := len(prk); i < 64; i++ {
		buf[i] = 0x36
	}
	n := 64
	n += copy(buf[n:], prev)
	n += copy(buf[n:], label1)
	n += copy(buf[n:], label2)
	n += copy(buf[n:], context)
	buf[n] = counter
	n++
	inner := sha256.Sum256(buf[:n])
	for i := 0; i < 64; i++ {
		buf[i] ^= 0x36 ^ 0x5c // ipad block -> opad block
	}
	copy(buf[64:], inner[:])
	return sha256.Sum256(buf[:64+hashLen])
}

// hkdfExpand implements HKDF-Expand with SHA-256.
func hkdfExpand(prk []byte, info string, length int) []byte {
	blocks := (length + hashLen - 1) / hashLen
	out := make([]byte, 0, blocks*hashLen)
	var block [hashLen]byte
	var prev []byte
	counter := byte(1)
	for len(out) < length {
		block = expandBlock(prk, prev, info, "", nil, counter)
		prev = block[:]
		out = append(out, block[:]...)
		counter++
	}
	return out[:length]
}

// deriveSecret is the RFC 8446 Derive-Secret analogue: expand with a
// label bound to a transcript hash. Output is always one hash block.
func deriveSecret(secret []byte, label string, transcriptHash []byte) []byte {
	block := deriveSecretShort(secret, label, transcriptHash)
	out := make([]byte, hashLen)
	copy(out, block[:])
	return out
}

// deriveSecretShort is deriveSecret returned by value — no heap output.
func deriveSecretShort(secret []byte, label string, transcriptHash []byte) [hashLen]byte {
	return expandBlock(secret, nil, "tls13 ", label, transcriptHash, 1)
}

// expandShort is hkdfExpand for outputs of at most one hash block,
// returned by value: the whole computation stays on the stack. Callers
// that only use the result transiently (finished keys, binder keys)
// avoid hkdfExpand's per-call output allocation.
func expandShort(prk []byte, info string) [hashLen]byte {
	return expandBlock(prk, nil, info, "", nil, 1)
}

// trafficKeys derives the AEAD key and IV from a traffic secret. Both
// land in one backing array — the pair is always derived and retained
// together (and cached per secret by AEADCache).
func trafficKeys(secret []byte) (key, iv []byte) {
	out := make([]byte, 28)
	k := expandShort(secret, "key")
	copy(out[:16], k[:])
	i := expandShort(secret, "iv")
	copy(out[16:], i[:])
	return out[:16:16], out[16:]
}

// aeadSeal encrypts plaintext with AES-128-GCM using the per-record nonce
// built from iv and seq.
func aeadSeal(key, iv []byte, seq uint64, plaintext, aad []byte) []byte {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err) // key length is fixed at 16
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	nonce := nonceFor(iv, seq)
	return gcm.Seal(nil, nonce[:], plaintext, aad)
}

// aeadOpen decrypts a record sealed by aeadSeal.
func aeadOpen(key, iv []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		panic(err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	nonce := nonceFor(iv, seq)
	return gcm.Open(nil, nonce[:], ciphertext, aad)
}

func nonceFor(iv []byte, seq uint64) (nonce [12]byte) {
	copy(nonce[:], iv)
	var seqb [8]byte
	binary.BigEndian.PutUint64(seqb[:], seq)
	for i := 0; i < 8; i++ {
		nonce[4+i] ^= seqb[i]
	}
	return nonce
}

// aeadOverhead is the GCM tag size added to every protected record.
const aeadOverhead = 16

// AEADCache memoizes the expanded AES-GCM state (and IV) for one traffic
// secret, so per-record protection skips the two HKDF expansions and the
// AES key schedule that aeadSeal/aeadOpen pay on every call. The cache
// re-derives transparently whenever the secret changes (epoch bumps),
// producing byte-identical records. The zero value is ready to use; a
// cache belongs to a single connection and is not safe for concurrent
// use, like the connection itself.
type AEADCache struct {
	secret []byte
	iv     []byte
	aead   cipher.AEAD
}

func (c *AEADCache) get(secret []byte) (cipher.AEAD, []byte) {
	if c.aead == nil || !bytes.Equal(c.secret, secret) {
		key, iv := trafficKeys(secret)
		block, err := aes.NewCipher(key)
		if err != nil {
			panic(err) // key length is fixed at 16
		}
		gcm, err := cipher.NewGCM(block)
		if err != nil {
			panic(err)
		}
		c.secret = append(c.secret[:0], secret...)
		c.aead, c.iv = gcm, iv
	}
	return c.aead, c.iv
}

// Seal is aeadSeal with the key schedule amortized across records.
func (c *AEADCache) Seal(secret []byte, seq uint64, plaintext, aad []byte) []byte {
	aead, iv := c.get(secret)
	nonce := nonceFor(iv, seq)
	return aead.Seal(nil, nonce[:], plaintext, aad)
}

// Open is aeadOpen with the key schedule amortized across records.
func (c *AEADCache) Open(secret []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	aead, iv := c.get(secret)
	nonce := nonceFor(iv, seq)
	return aead.Open(nil, nonce[:], ciphertext, aad)
}

// SealAppend appends the sealed record to dst, reusing dst's capacity;
// callers lease dst from a pool to keep record protection alloc-free.
func (c *AEADCache) SealAppend(dst, secret []byte, seq uint64, plaintext, aad []byte) []byte {
	aead, iv := c.get(secret)
	nonce := nonceFor(iv, seq)
	return aead.Seal(dst, nonce[:], plaintext, aad)
}

// OpenAppend appends the plaintext to dst, reusing dst's capacity.
func (c *AEADCache) OpenAppend(dst, secret []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	aead, iv := c.get(secret)
	nonce := nonceFor(iv, seq)
	return aead.Open(dst, nonce[:], ciphertext, aad)
}

// hmacSum computes HMAC-SHA256(key, data).
func hmacSum(key, data []byte) []byte {
	s := hmacShort(key, data, nil, nil) // falls back internally on long data
	out := make([]byte, hashLen)
	copy(out, s[:])
	return out
}

// hmacEqual compares MACs in constant time.
func hmacEqual(a, b []byte) bool { return hmac.Equal(a, b) }
