package tlsmini

// This file exports the record-protection primitives for use by
// internal/quic, which performs its own packet protection with secrets
// obtained from Engine.TrafficSecret.

// DeriveTrafficKeys derives the AEAD key and IV from a traffic secret.
func DeriveTrafficKeys(secret []byte) (key, iv []byte) { return trafficKeys(secret) }

// Seal AEAD-protects plaintext with the per-record nonce built from iv
// and seq, binding aad.
func Seal(key, iv []byte, seq uint64, plaintext, aad []byte) []byte {
	return aeadSeal(key, iv, seq, plaintext, aad)
}

// Open reverses Seal.
func Open(key, iv []byte, seq uint64, ciphertext, aad []byte) ([]byte, error) {
	return aeadOpen(key, iv, seq, ciphertext, aad)
}

// AEADOverhead is the tag size Seal appends.
const AEADOverhead = aeadOverhead

// HMACShort computes HMAC-SHA256(key, p1||p2) entirely on the stack for
// short inputs (internal/quic's initial-secret and header-protection
// derivations run once per connection and used to pay crypto/hmac's
// per-call allocations).
func HMACShort(key, p1, p2 []byte) [32]byte { return hmacShort(key, p1, p2, nil) }
