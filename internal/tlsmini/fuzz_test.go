package tlsmini

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzDecodeMessage checks that handshake-message parsing never panics
// on arbitrary bytes, and that any message it accepts re-encodes to a
// wire image the decoder accepts again with identical field content.
// Trailing extension padding is regenerated rather than preserved, so
// the fixed-point check runs on the re-encoded image, not the input.
func FuzzDecodeMessage(f *testing.F) {
	seed := func(m Message) { f.Add(EncodeMessage(m)) }
	seed(Message{Type: TypeClientHello, Body: &ClientHello{
		ServerName:        "dns.example.com",
		ALPN:              []string{"dot", "doq"},
		SupportedVersions: []Version{VersionTLS13, VersionTLS12},
		PSKTicket:         []byte("ticket-bytes"),
		EarlyData:         true,
	}})
	seed(Message{Type: TypeServerHello, Body: &ServerHello{Version: VersionTLS13, PSKAccepted: true}})
	seed(Message{Type: TypeEncryptedExtensions, Body: &EncryptedExtensions{ALPN: "doq"}})
	seed(Message{Type: TypeCertificate, Body: &Certificate{
		Name: "dns.example.com", PublicKey: []byte{1, 2, 3}, Chain: make([]byte, 900),
	}})
	seed(Message{Type: TypeCertificateVerify, Body: &CertificateVerify{Signature: make([]byte, 64)}})
	seed(Message{Type: TypeFinished, Body: &Finished{}})
	seed(Message{Type: TypeNewSessionTicket, Body: &NewSessionTicket{
		LifetimeSecs: 7200, AgeAdd: 42, Ticket: []byte("resumption"),
	}})
	seed(Message{Type: TypeClientKeyExchange, Body: &ClientKeyExchange{}})
	seed(Message{Type: TypeServerHelloDone, Body: &ServerHelloDone{}})
	// Truncations: bare header, and a length claiming more than present.
	f.Add([]byte{byte(TypeClientHello), 0, 0})
	f.Add([]byte{byte(TypeCertificate), 0, 0, 40, 1, 2, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		m1, n, err := DecodeMessage(b)
		if err != nil {
			return
		}
		if n < 4 || n > len(b) {
			t.Fatalf("consumed %d of a %d-byte input", n, len(b))
		}
		wire := AppendMessage(nil, m1)
		m2, n2, err := DecodeMessage(wire)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v\nwire: %x", err, wire)
		}
		if n2 != len(wire) {
			t.Fatalf("re-decode consumed %d of %d encoded bytes", n2, len(wire))
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Fatalf("round trip changed the message:\nbefore: %#v\nafter:  %#v", m1.Body, m2.Body)
		}
		wire2 := AppendMessage(nil, m2)
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %x\nsecond: %x", wire, wire2)
		}
	})
}

// fuzzStream feeds a fixed byte script to a Conn and discards writes.
type fuzzStream struct{ in [][]byte }

func (s *fuzzStream) Write(p []byte) error { return nil }
func (s *fuzzStream) Read() ([]byte, bool) {
	if len(s.in) == 0 {
		return nil, false
	}
	p := s.in[0]
	s.in = s.in[1:]
	return p, true
}
func (s *fuzzStream) Close() {}

// captureStream records a Conn's writes, used to seed the record-layer
// fuzzer with a genuine client first flight.
type captureStream struct{ out []byte }

func (s *captureStream) Write(p []byte) error { s.out = append(s.out, p...); return nil }
func (s *captureStream) Read() ([]byte, bool) { return nil, false }
func (s *captureStream) Close()               {}

// FuzzServerRecords drives a server-side Conn with arbitrary bytes as
// its inbound record stream: framing, epoch dispatch, handshake-message
// decoding and the engine state machine must all fail closed (an error,
// never a panic or a hang) on hostile input.
func FuzzServerRecords(f *testing.F) {
	var capture captureStream
	client := NewConn(&capture, Config{
		IsClient:   true,
		ServerName: "fuzz.example",
		ALPN:       []string{"dot"},
		Rand:       rand.New(rand.NewSource(2)),
	})
	_ = client.Handshake() // fails at EOF; the first flight is captured
	f.Add(capture.out)     // a genuine ClientHello record
	f.Add([]byte{recordHandshake, byte(EpochInitial), 0, 0})
	f.Add([]byte{recordAppData, byte(EpochApp), 0, 4, 1, 2, 3, 4})
	f.Add([]byte{recordHandshake, byte(EpochInitial), 0xff, 0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		rng := rand.New(rand.NewSource(1))
		server := NewConn(&fuzzStream{in: [][]byte{b}}, Config{
			Identity: GenerateIdentity(rng, "fuzz.example", 1200),
			ALPN:     []string{"dot"},
			Rand:     rng,
		})
		if err := server.Handshake(); err != nil {
			return
		}
		// A completed handshake from fuzzed bytes would mean the
		// transcript MAC verified against an unauthenticated flight.
		t.Fatalf("server handshake completed on fuzzed input: %x", b)
	})
}
