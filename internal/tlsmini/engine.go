package tlsmini

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"hash"
	"math/rand"
	"time"
)

// DefaultTicketLifetime is the maximum session ticket lifetime of RFC
// 8446 §4.6.1; the paper observes all resolvers using it.
const DefaultTicketLifetime = 7 * 24 * time.Hour

// Config parameterizes an Engine.
type Config struct {
	IsClient   bool
	ServerName string // client: target name; ignored for servers
	ALPN       []string
	Identity   *Identity // server certificate
	// Version is the highest version to negotiate. Zero means TLS 1.3.
	Version Version
	// SessionCache enables client-side resumption when non-nil.
	SessionCache *SessionCache
	// TicketStore enables server-side resumption when non-nil.
	TicketStore *TicketStore
	// DisableSessionTickets stops the server from issuing tickets.
	DisableSessionTickets bool
	// AcceptEarlyData lets the server accept 0-RTT. The paper found no
	// public resolver enabling this; it is the E11 ablation.
	AcceptEarlyData bool
	// OfferEarlyData makes the client offer 0-RTT when it has a suitable
	// session.
	OfferEarlyData bool
	// TicketLifetime defaults to DefaultTicketLifetime.
	TicketLifetime time.Duration
	// Rand is the deterministic randomness source (required).
	Rand *rand.Rand
	// Now supplies virtual time for ticket lifetimes (required when
	// resumption is used).
	Now func() time.Duration
}

func (c *Config) now() time.Duration {
	if c.Now == nil {
		return 0
	}
	return c.Now()
}

func (c *Config) ticketLifetime() time.Duration {
	if c.TicketLifetime == 0 {
		return DefaultTicketLifetime
	}
	return c.TicketLifetime
}

func (c *Config) maxVersion() Version {
	if c.Version == 0 {
		return VersionTLS13
	}
	return c.Version
}

// Engine is the transport-agnostic handshake state machine. Feed it
// peer messages with Handle; it returns the flight to transmit.
type Engine struct {
	cfg Config

	state      engineState
	transcript hash.Hash
	thBuf      []byte // transcriptHash output, reused across calls
	encBuf     []byte // hashMsg encode scratch, reused across calls

	dhPriv [32]byte

	version      Version
	alpn         string
	offeredPSK   *Session
	pskAccepted  bool
	earlyOffered bool
	earlyAccept  bool

	earlySecret  [hashLen]byte
	hsSecret     [hashLen]byte
	masterSecret [hashLen]byte
	hasMaster    bool

	// secrets holds the traffic secrets inline, indexed by
	// (epoch, direction): no per-secret heap slices, no map.
	secrets   [secretSlots][hashLen]byte
	secretSet [secretSlots]bool

	peerIdentityName string
	peerCertKey      []byte       // server public key (client side)
	clientHello      *ClientHello // server: retained for PSK/early decisions
	err              error
}

// secretSlots is (number of epochs) x (two directions).
const secretSlots = 8

func secretIdx(epoch Epoch, client bool) int {
	i := int(epoch) * 2
	if client {
		i++
	}
	return i
}

type engineState int

const (
	stStart engineState = iota
	stClientWaitSH
	stClientWaitEE
	stClientWaitCert
	stClientWaitCV
	stClientWaitFin
	stClientWaitCert12
	stClientWaitDone12
	stClientWaitFin12
	stServerWaitCH
	stServerWaitFin
	stServerWaitCKE12
	stServerWaitFin12
	stDone
)

// NewEngine creates an engine. Servers must set Identity.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg:        cfg,
		transcript: sha256.New(),
	}
	if cfg.IsClient {
		e.state = stStart
	} else {
		e.state = stServerWaitCH
	}
	return e
}

func (e *Engine) fail(err error) error {
	e.err = err
	return err
}

// Err returns the first fatal error.
func (e *Engine) Err() error { return e.err }

// Complete reports whether the handshake has finished on this side.
func (e *Engine) Complete() bool { return e.state == stDone }

// NegotiatedALPN returns the agreed application protocol.
func (e *Engine) NegotiatedALPN() string { return e.alpn }

// NegotiatedVersion returns the agreed protocol version (valid once the
// ServerHello has been processed).
func (e *Engine) NegotiatedVersion() Version { return e.version }

// UsedResumption reports whether the handshake resumed a session.
func (e *Engine) UsedResumption() bool { return e.pskAccepted }

// EarlyDataOffered reports whether the client offered 0-RTT.
func (e *Engine) EarlyDataOffered() bool { return e.earlyOffered }

// EarlyDataAccepted reports whether 0-RTT was accepted.
func (e *Engine) EarlyDataAccepted() bool { return e.earlyAccept }

// PeerName returns the server identity name (client side, after the
// certificate or on resumption the cached name).
func (e *Engine) PeerName() string { return e.peerIdentityName }

// TrafficSecret returns the traffic secret for an epoch and direction
// (client=true for client-to-server). It returns nil if not yet derived.
func (e *Engine) TrafficSecret(epoch Epoch, client bool) []byte {
	i := secretIdx(epoch, client)
	// The epoch may come straight off the wire (a record header byte);
	// an out-of-range value has no key rather than a panic.
	if i >= len(e.secretSet) || !e.secretSet[i] {
		return nil
	}
	return e.secrets[i][:]
}

func (e *Engine) setSecret(epoch Epoch, client bool, v [hashLen]byte) {
	i := secretIdx(epoch, client)
	e.secrets[i] = v
	e.secretSet[i] = true
}

func (e *Engine) hashMsg(m Message) {
	e.encBuf = AppendMessage(e.encBuf[:0], m)
	e.transcript.Write(e.encBuf)
}

// transcriptHash returns the running transcript hash in a buffer reused
// across calls; every caller consumes the bytes before the next call.
func (e *Engine) transcriptHash() []byte {
	e.thBuf = e.transcript.Sum(e.thBuf[:0])
	return e.thBuf
}

func (e *Engine) genKeyShare() [32]byte {
	// The 32-byte draw from the deterministic stream is load-bearing: it
	// matches the X25519 scalar draw of earlier versions byte for byte,
	// so every downstream random value (ticket bytes, chain padding,
	// netem jitter) stays on the same sequence.
	e.cfg.Rand.Read(e.dhPriv[:])
	return simDHPub(e.dhPriv)
}

func (e *Engine) sharedSecret(peerPub [32]byte) [32]byte {
	return simDHShared(e.dhPriv, peerPub)
}

// Start produces the client's first flight. For servers it is a no-op.
func (e *Engine) Start() ([]Message, error) {
	if !e.cfg.IsClient || e.state != stStart {
		return nil, nil
	}
	ch := &ClientHello{ServerName: e.cfg.ServerName, ALPN: e.cfg.ALPN}
	e.cfg.Rand.Read(ch.Random[:])
	e.cfg.Rand.Read(ch.SessionID[:])
	ch.KeyShare = e.genKeyShare()
	switch e.cfg.maxVersion() {
	case VersionTLS12:
		ch.SupportedVersions = []Version{VersionTLS12}
	default:
		ch.SupportedVersions = []Version{VersionTLS13, VersionTLS12}
	}

	var psk []byte
	if e.cfg.SessionCache != nil {
		if s := e.cfg.SessionCache.Get(e.cfg.ServerName, e.cfg.now()); s != nil {
			e.offeredPSK = s
			ch.PSKTicket = s.Ticket
			psk = s.Secret
			es := hkdfExtractShort(nil, psk)
			binderKey := expandShort(es[:], "binder")
			mac := hmacShort(binderKey[:], s.Ticket, nil, nil)
			copy(ch.PSKBinder[:], mac[:])
			if e.cfg.OfferEarlyData && s.EarlyData {
				ch.EarlyData = true
				e.earlyOffered = true
			}
			e.peerIdentityName = s.ServerName
		}
	}
	e.earlySecret = hkdfExtractShort(nil, psk)

	m := Message{Type: TypeClientHello, Epoch: EpochInitial, Body: ch}
	e.hashMsg(m)
	if e.earlyOffered {
		e.setSecret(EpochEarly, true, deriveSecretShort(e.earlySecret[:], "c e traffic", e.transcriptHash()))
	}
	e.state = stClientWaitSH
	return []Message{m}, nil
}

// Handle processes one peer message and returns this side's response
// flight (possibly empty).
func (e *Engine) Handle(m Message) ([]Message, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.cfg.IsClient {
		return e.handleClient(m)
	}
	return e.handleServer(m)
}

func (e *Engine) handleClient(m Message) ([]Message, error) {
	switch e.state {
	case stClientWaitSH:
		sh, ok := m.Body.(*ServerHello)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected ServerHello, got %d", m.Type))
		}
		e.hashMsg(m)
		e.version = sh.Version
		if sh.Version == VersionTLS12 {
			e.state = stClientWaitCert12
			return nil, nil
		}
		e.pskAccepted = sh.PSKAccepted
		if !e.pskAccepted {
			// Server declined the PSK; restart the schedule without it.
			e.earlySecret = hkdfExtractShort(nil, nil)
			e.earlyAccept = false
		}
		shared := e.sharedSecret(sh.KeyShare)
		e.deriveHandshakeSecrets(shared[:])
		e.state = stClientWaitEE
		return nil, nil

	case stClientWaitEE:
		ee, ok := m.Body.(*EncryptedExtensions)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected EncryptedExtensions, got %d", m.Type))
		}
		e.hashMsg(m)
		e.alpn = ee.ALPN
		if len(e.cfg.ALPN) > 0 && e.alpn == "" {
			return nil, e.fail(errors.New("tlsmini: server did not negotiate ALPN"))
		}
		e.earlyAccept = ee.EarlyDataAccepted && e.earlyOffered
		if e.pskAccepted {
			e.state = stClientWaitFin
		} else {
			e.state = stClientWaitCert
		}
		return nil, nil

	case stClientWaitCert:
		cert, ok := m.Body.(*Certificate)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected Certificate, got %d", m.Type))
		}
		e.hashMsg(m)
		e.peerIdentityName = cert.Name
		e.peerCertKey = append([]byte(nil), cert.PublicKey...)
		e.state = stClientWaitCV
		return nil, nil

	case stClientWaitCV:
		cv, ok := m.Body.(*CertificateVerify)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected CertificateVerify, got %d", m.Type))
		}
		// Signature covers the transcript up to (excluding) this message.
		if !simVerify(e.peerCertKey, e.transcriptHash(), cv.Signature) {
			return nil, e.fail(errors.New("tlsmini: certificate verification failed"))
		}
		e.hashMsg(m)
		e.state = stClientWaitFin
		return nil, nil

	case stClientWaitFin:
		fin, ok := m.Body.(*Finished)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected Finished, got %d", m.Type))
		}
		serverHS := e.TrafficSecret(EpochHandshake, false)
		finKey := expandShort(serverHS, "finished")
		want := hmacShort(finKey[:], e.transcriptHash(), nil, nil)
		if !hmacEqual(want[:], fin.VerifyData[:]) {
			return nil, e.fail(errors.New("tlsmini: server Finished verification failed"))
		}
		e.hashMsg(m)
		e.deriveAppSecrets()

		// Client Finished.
		clientHS := e.TrafficSecret(EpochHandshake, true)
		cFinKey := expandShort(clientHS, "finished")
		cfin := &Finished{}
		cmac := hmacShort(cFinKey[:], e.transcriptHash(), nil, nil)
		copy(cfin.VerifyData[:], cmac[:])
		out := Message{Type: TypeFinished, Epoch: EpochHandshake, Body: cfin}
		e.hashMsg(out)
		e.state = stDone
		return []Message{out}, nil

	// --- TLS 1.2 emulation: one extra round trip ---
	case stClientWaitCert12:
		cert, ok := m.Body.(*Certificate)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected Certificate, got %d", m.Type))
		}
		e.hashMsg(m)
		e.peerIdentityName = cert.Name
		e.peerCertKey = append([]byte(nil), cert.PublicKey...)
		e.state = stClientWaitDone12
		return nil, nil

	case stClientWaitDone12:
		if _, ok := m.Body.(*ServerHelloDone); !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected ServerHelloDone, got %d", m.Type))
		}
		e.hashMsg(m)
		cke := &ClientKeyExchange{}
		cke.KeyShare = simDHPub(e.dhPriv)
		out1 := Message{Type: TypeClientKeyExchange, Epoch: EpochInitial, Body: cke}
		e.hashMsg(out1)
		fin := &Finished{}
		lk := e.legacyKey()
		lmac := hmacShort(lk[:], e.transcriptHash(), nil, nil)
		copy(fin.VerifyData[:], lmac[:])
		out2 := Message{Type: TypeFinished, Epoch: EpochInitial, Body: fin}
		e.hashMsg(out2)
		e.state = stClientWaitFin12
		return []Message{out1, out2}, nil

	case stClientWaitFin12:
		if _, ok := m.Body.(*Finished); !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected Finished, got %d", m.Type))
		}
		e.hashMsg(m)
		e.deriveLegacyAppSecrets()
		e.state = stDone
		return nil, nil

	case stDone:
		if nst, ok := m.Body.(*NewSessionTicket); ok {
			e.hashMsg(m)
			if e.cfg.SessionCache != nil {
				resumption := deriveSecret(e.masterSecret[:], "res master", nst.Nonce[:])
				e.cfg.SessionCache.Put(&Session{
					ServerName: e.cfg.ServerName,
					Ticket:     append([]byte(nil), nst.Ticket...),
					Secret:     resumption,
					ALPN:       e.alpn,
					IssuedAt:   e.cfg.now(),
					Lifetime:   time.Duration(nst.LifetimeSecs) * time.Second,
					EarlyData:  nst.EarlyDataAllowed,
				})
			}
			return nil, nil
		}
		return nil, e.fail(fmt.Errorf("tlsmini: unexpected post-handshake message %d", m.Type))
	}
	return nil, e.fail(fmt.Errorf("tlsmini: client cannot handle message %d in state %d", m.Type, e.state))
}

func (e *Engine) handleServer(m Message) ([]Message, error) {
	switch e.state {
	case stServerWaitCH:
		ch, ok := m.Body.(*ClientHello)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected ClientHello, got %d", m.Type))
		}
		e.clientHello = ch
		// Version negotiation.
		e.version = 0
		for _, v := range ch.SupportedVersions {
			if v <= e.cfg.maxVersion() && v > e.version {
				e.version = v
			}
		}
		if e.version == 0 {
			return nil, e.fail(errors.New("tlsmini: no common version"))
		}
		// ALPN negotiation: first client preference supported here.
		if len(ch.ALPN) > 0 {
			for _, a := range ch.ALPN {
				if contains(e.cfg.ALPN, a) {
					e.alpn = a
					break
				}
			}
			if e.alpn == "" {
				return nil, e.fail(errors.New("tlsmini: no application protocol overlap"))
			}
		}
		e.hashMsg(m)
		if e.version == VersionTLS12 {
			return e.serverFlight12(ch)
		}
		return e.serverFlight13(ch)

	case stServerWaitFin:
		fin, ok := m.Body.(*Finished)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected Finished, got %d", m.Type))
		}
		clientHS := e.TrafficSecret(EpochHandshake, true)
		finKey := expandShort(clientHS, "finished")
		mac := hmacShort(finKey[:], e.transcriptHash(), nil, nil)
		if !hmacEqual(mac[:], fin.VerifyData[:]) {
			return nil, e.fail(errors.New("tlsmini: client Finished verification failed"))
		}
		e.hashMsg(m)
		e.state = stDone
		if e.cfg.DisableSessionTickets || e.cfg.TicketStore == nil {
			return nil, nil
		}
		return []Message{e.issueTicket()}, nil

	case stServerWaitCKE12:
		cke, ok := m.Body.(*ClientKeyExchange)
		if !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected ClientKeyExchange, got %d", m.Type))
		}
		e.hashMsg(m)
		// The TLS 1.2 emulation's Finished key is static (legacyKey), so
		// the shared secret itself is never consumed; nothing to derive.
		_ = cke
		e.state = stServerWaitFin12
		return nil, nil

	case stServerWaitFin12:
		if _, ok := m.Body.(*Finished); !ok {
			return nil, e.fail(fmt.Errorf("tlsmini: expected Finished, got %d", m.Type))
		}
		e.hashMsg(m)
		fin := &Finished{}
		lk := e.legacyKey()
		lmac := hmacShort(lk[:], e.transcriptHash(), nil, nil)
		copy(fin.VerifyData[:], lmac[:])
		out := Message{Type: TypeFinished, Epoch: EpochInitial, Body: fin}
		e.hashMsg(out)
		e.deriveLegacyAppSecrets()
		e.state = stDone
		return []Message{out}, nil
	}
	return nil, e.fail(fmt.Errorf("tlsmini: server cannot handle message %d in state %d", m.Type, e.state))
}

func (e *Engine) serverFlight13(ch *ClientHello) ([]Message, error) {
	// PSK decision.
	var psk []byte
	if len(ch.PSKTicket) > 0 && e.cfg.TicketStore != nil {
		if st := e.cfg.TicketStore.get(ch.PSKTicket, e.cfg.now()); st != nil {
			es := hkdfExtractShort(nil, st.secret)
			binderKey := expandShort(es[:], "binder")
			mac := hmacShort(binderKey[:], ch.PSKTicket, nil, nil)
			if hmacEqual(mac[:], ch.PSKBinder[:]) {
				psk = st.secret
				e.pskAccepted = true
				if ch.EarlyData && e.cfg.AcceptEarlyData && st.earlyData {
					e.earlyAccept = true
				}
			}
		}
	}
	e.earlySecret = hkdfExtractShort(nil, psk)
	if e.earlyAccept {
		// Early traffic secret binds to the ClientHello transcript.
		e.setSecret(EpochEarly, true, deriveSecretShort(e.earlySecret[:], "c e traffic", e.transcriptHash()))
	}

	sh := &ServerHello{Version: VersionTLS13, PSKAccepted: e.pskAccepted}
	e.cfg.Rand.Read(sh.Random[:])
	sh.KeyShare = e.genKeyShare()
	shared := e.sharedSecret(e.clientHello.KeyShare)
	mSH := Message{Type: TypeServerHello, Epoch: EpochInitial, Body: sh}
	e.hashMsg(mSH)
	e.deriveHandshakeSecrets(shared[:])

	flight := []Message{mSH}
	ee := &EncryptedExtensions{ALPN: e.alpn, EarlyDataAccepted: e.earlyAccept}
	mEE := Message{Type: TypeEncryptedExtensions, Epoch: EpochHandshake, Body: ee}
	e.hashMsg(mEE)
	flight = append(flight, mEE)

	if !e.pskAccepted {
		if e.cfg.Identity == nil {
			return nil, e.fail(errors.New("tlsmini: server has no identity"))
		}
		cert := &Certificate{
			Name:      e.cfg.Identity.Name,
			PublicKey: e.cfg.Identity.PublicKey,
			Chain:     e.cfg.Identity.Chain,
		}
		mCert := Message{Type: TypeCertificate, Epoch: EpochHandshake, Body: cert}
		e.hashMsg(mCert)
		sig := simSign(e.cfg.Identity.PrivateKey, e.transcriptHash())
		mCV := Message{Type: TypeCertificateVerify, Epoch: EpochHandshake, Body: &CertificateVerify{Signature: sig}}
		e.hashMsg(mCV)
		flight = append(flight, mCert, mCV)
	}

	serverHS := e.TrafficSecret(EpochHandshake, false)
	finKey := expandShort(serverHS, "finished")
	fin := &Finished{}
	fmac := hmacShort(finKey[:], e.transcriptHash(), nil, nil)
	copy(fin.VerifyData[:], fmac[:])
	mFin := Message{Type: TypeFinished, Epoch: EpochHandshake, Body: fin}
	e.hashMsg(mFin)
	flight = append(flight, mFin)

	e.deriveAppSecrets()
	e.state = stServerWaitFin
	return flight, nil
}

func (e *Engine) serverFlight12(ch *ClientHello) ([]Message, error) {
	if e.cfg.Identity == nil {
		return nil, e.fail(errors.New("tlsmini: server has no identity"))
	}
	sh := &ServerHello{Version: VersionTLS12}
	e.cfg.Rand.Read(sh.Random[:])
	sh.KeyShare = e.genKeyShare()
	mSH := Message{Type: TypeServerHello, Epoch: EpochInitial, Body: sh}
	e.hashMsg(mSH)
	cert := &Certificate{
		Name:      e.cfg.Identity.Name,
		PublicKey: e.cfg.Identity.PublicKey,
		Chain:     e.cfg.Identity.Chain,
	}
	mCert := Message{Type: TypeCertificate, Epoch: EpochInitial, Body: cert}
	e.hashMsg(mCert)
	mDone := Message{Type: TypeServerHelloDone, Epoch: EpochInitial, Body: &ServerHelloDone{}}
	e.hashMsg(mDone)
	e.state = stServerWaitCKE12
	return []Message{mSH, mCert, mDone}, nil
}

func (e *Engine) issueTicket() Message {
	nst := &NewSessionTicket{
		LifetimeSecs:     uint32(e.cfg.ticketLifetime() / time.Second),
		EarlyDataAllowed: e.cfg.AcceptEarlyData,
	}
	e.cfg.Rand.Read(nst.Nonce[:])
	ticket := make([]byte, 48)
	e.cfg.Rand.Read(ticket)
	nst.Ticket = ticket
	nst.AgeAdd = e.cfg.Rand.Uint32()
	resumption := deriveSecret(e.masterSecret[:], "res master", nst.Nonce[:])
	e.cfg.TicketStore.put(ticket, &ticketState{
		secret:    resumption,
		alpn:      e.alpn,
		issuedAt:  e.cfg.now(),
		lifetime:  e.cfg.ticketLifetime(),
		earlyData: e.cfg.AcceptEarlyData,
	})
	m := Message{Type: TypeNewSessionTicket, Epoch: EpochApp, Body: nst}
	e.hashMsg(m)
	return m
}

func (e *Engine) deriveHandshakeSecrets(shared []byte) {
	derived := deriveSecretShort(e.earlySecret[:], "derived", nil)
	e.hsSecret = hkdfExtractShort(derived[:], shared)
	th := e.transcriptHash()
	e.setSecret(EpochHandshake, true, deriveSecretShort(e.hsSecret[:], "c hs traffic", th))
	e.setSecret(EpochHandshake, false, deriveSecretShort(e.hsSecret[:], "s hs traffic", th))
	hsDerived := deriveSecretShort(e.hsSecret[:], "derived", nil)
	e.masterSecret = hkdfExtractShort(hsDerived[:], nil)
	e.hasMaster = true
}

func (e *Engine) deriveAppSecrets() {
	th := e.transcriptHash()
	e.setSecret(EpochApp, true, deriveSecretShort(e.masterSecret[:], "c ap traffic", th))
	e.setSecret(EpochApp, false, deriveSecretShort(e.masterSecret[:], "s ap traffic", th))
}

// legacyKey is the TLS 1.2 emulation's Finished key; both sides derive it
// from the ECDHE secret transcribed into the master secret.
func (e *Engine) legacyKey() [hashLen]byte {
	if !e.hasMaster {
		e.masterSecret = hkdfExtractShort(nil, []byte("legacy master"))
		e.hasMaster = true
	}
	return expandShort(e.masterSecret[:], "legacy finished")
}

func (e *Engine) deriveLegacyAppSecrets() {
	th := e.transcriptHash()
	lk := e.legacyKey()
	e.setSecret(EpochApp, true, deriveSecretShort(lk[:], "c ap traffic", th))
	e.setSecret(EpochApp, false, deriveSecretShort(lk[:], "s ap traffic", th))
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
