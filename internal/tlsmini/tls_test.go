package tlsmini

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// pipeStream is an in-memory Stream for tests.
type pipeStream struct {
	out *sim.Queue[[]byte]
	in  *sim.Queue[[]byte]
}

func (p *pipeStream) Write(b []byte) error {
	p.out.Push(append([]byte(nil), b...))
	return nil
}
func (p *pipeStream) Read() ([]byte, bool) { return p.in.Pop() }
func (p *pipeStream) Close()               { p.out.Close() }

func pipe(w *sim.World) (a, b Stream) {
	q1 := sim.NewQueue[[]byte](w, "pipe-ab")
	q2 := sim.NewQueue[[]byte](w, "pipe-ba")
	return &pipeStream{out: q1, in: q2}, &pipeStream{out: q2, in: q1}
}

type testEnv struct {
	w        *sim.World
	identity *Identity
	cache    *SessionCache
	store    *TicketStore
	rng      *rand.Rand
}

func newEnv() *testEnv {
	w := sim.NewWorld(1)
	rng := rand.New(rand.NewSource(99))
	return &testEnv{
		w:        w,
		identity: GenerateIdentity(rng, "resolver.example", 1200),
		cache:    NewSessionCache(),
		store:    NewTicketStore(),
		rng:      rng,
	}
}

func (env *testEnv) clientCfg() Config {
	return Config{
		IsClient:     true,
		ServerName:   "resolver.example",
		ALPN:         []string{"doq"},
		SessionCache: env.cache,
		Rand:         env.rng,
		Now:          env.w.Now,
	}
}

func (env *testEnv) serverCfg() Config {
	return Config{
		ALPN:        []string{"doq", "dot"},
		Identity:    env.identity,
		TicketStore: env.store,
		Rand:        env.rng,
		Now:         env.w.Now,
	}
}

// runHandshake performs one client+server handshake over a pipe and then
// an echo exchange; it returns the client Conn for inspection.
func runHandshake(t *testing.T, env *testEnv, ccfg, scfg Config) *Conn {
	t.Helper()
	cs, ss := pipe(env.w)
	client := NewConn(cs, ccfg)
	server := NewConn(ss, scfg)
	var clientErr, serverErr error
	env.w.Go(func() {
		serverErr = server.Handshake()
		if serverErr != nil {
			return
		}
		if msg, ok := server.Read(); ok {
			server.Write(append([]byte("echo:"), msg...))
		}
	})
	env.w.Go(func() {
		clientErr = client.Handshake()
		if clientErr != nil {
			return
		}
		client.Write([]byte("hello"))
		got, ok := client.Read()
		if !ok || !bytes.Equal(got, []byte("echo:hello")) {
			clientErr = errEcho
		}
	})
	env.w.Run()
	if serverErr != nil {
		t.Fatalf("server: %v", serverErr)
	}
	if clientErr != nil {
		t.Fatalf("client: %v", clientErr)
	}
	return client
}

var errEcho = errorString("echo mismatch")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestFullHandshakeAndEcho(t *testing.T) {
	env := newEnv()
	c := runHandshake(t, env, env.clientCfg(), env.serverCfg())
	e := c.Engine()
	if e.NegotiatedVersion() != VersionTLS13 {
		t.Errorf("version = %v", e.NegotiatedVersion())
	}
	if e.NegotiatedALPN() != "doq" {
		t.Errorf("alpn = %q", e.NegotiatedALPN())
	}
	if e.UsedResumption() {
		t.Error("first handshake used resumption")
	}
	if e.PeerName() != "resolver.example" {
		t.Errorf("peer = %q", e.PeerName())
	}
}

func TestSessionResumption(t *testing.T) {
	env := newEnv()
	runHandshake(t, env, env.clientCfg(), env.serverCfg())
	if env.cache.Len() != 1 {
		t.Fatalf("cache has %d sessions after first handshake", env.cache.Len())
	}
	c := runHandshake(t, env, env.clientCfg(), env.serverCfg())
	if !c.Engine().UsedResumption() {
		t.Error("second handshake did not resume")
	}
}

func TestTicketExpiryPreventsResumption(t *testing.T) {
	env := newEnv()
	runHandshake(t, env, env.clientCfg(), env.serverCfg())
	// Advance virtual time past the 7-day ticket lifetime.
	env.w.Go(func() { env.w.Sleep(8 * 24 * time.Hour) })
	env.w.Run()
	c := runHandshake(t, env, env.clientCfg(), env.serverCfg())
	if c.Engine().UsedResumption() {
		t.Error("resumed with an expired ticket")
	}
}

func TestZeroRTTAcceptedWhenEnabled(t *testing.T) {
	env := newEnv()
	scfg := env.serverCfg()
	scfg.AcceptEarlyData = true
	runHandshake(t, env, env.clientCfg(), scfg)

	ccfg := env.clientCfg()
	ccfg.OfferEarlyData = true
	cs, ss := pipe(env.w)
	client := NewConn(cs, ccfg)
	server := NewConn(ss, scfg)
	var gotEarly []byte
	env.w.Go(func() {
		if err := server.Handshake(); err != nil {
			t.Errorf("server: %v", err)
			return
		}
		gotEarly, _ = server.Read()
	})
	env.w.Go(func() {
		// 0-RTT: write before Handshake completes.
		if flight, err := client.engine.Start(); err != nil || len(flight) == 0 {
			t.Errorf("start: %v", err)
			return
		} else if err := client.writeFlight(flight); err != nil {
			t.Errorf("write flight: %v", err)
			return
		}
		if !client.engine.EarlyDataOffered() {
			t.Error("client did not offer early data")
			return
		}
		if err := client.Write([]byte("early query")); err != nil {
			t.Errorf("early write: %v", err)
			return
		}
		// Complete the handshake so the server can verify our Finished.
		if err := client.Handshake(); err != nil {
			t.Errorf("client handshake: %v", err)
		}
	})
	env.w.Run()
	if !bytes.Equal(gotEarly, []byte("early query")) {
		t.Errorf("server got early data %q", gotEarly)
	}
	if !server.Engine().EarlyDataAccepted() {
		t.Error("server did not accept early data")
	}
}

func TestZeroRTTRejectedByDefault(t *testing.T) {
	env := newEnv()
	runHandshake(t, env, env.clientCfg(), env.serverCfg())
	ccfg := env.clientCfg()
	ccfg.OfferEarlyData = true
	c := runHandshake(t, env, ccfg, env.serverCfg())
	// The default server (like all public resolvers in the paper) issues
	// tickets without the early-data permission, so the client never even
	// offers 0-RTT.
	if c.Engine().EarlyDataAccepted() {
		t.Error("server accepted 0-RTT despite AcceptEarlyData=false")
	}
}

func TestTLS12ModeNegotiation(t *testing.T) {
	env := newEnv()
	scfg := env.serverCfg()
	scfg.Version = VersionTLS12
	c := runHandshake(t, env, env.clientCfg(), scfg)
	if got := c.Engine().NegotiatedVersion(); got != VersionTLS12 {
		t.Errorf("version = %v, want TLS 1.2", got)
	}
	if c.Engine().UsedResumption() {
		t.Error("TLS 1.2 mode resumed")
	}
}

func TestALPNMismatchFails(t *testing.T) {
	env := newEnv()
	ccfg := env.clientCfg()
	ccfg.ALPN = []string{"h2"}
	scfg := env.serverCfg() // supports doq, dot only
	cs, ss := pipe(env.w)
	client := NewConn(cs, ccfg)
	server := NewConn(ss, scfg)
	var serverErr error
	env.w.Go(func() { serverErr = server.Handshake() })
	env.w.Go(func() { client.Handshake() })
	env.w.Run()
	if serverErr == nil {
		t.Error("server accepted handshake without ALPN overlap")
	}
}

func TestMessageSizesRealistic(t *testing.T) {
	env := newEnv()
	eng := NewEngine(env.clientCfg())
	flight, err := eng.Start()
	if err != nil {
		t.Fatal(err)
	}
	ch := EncodeMessage(flight[0])
	// Real ClientHellos are ~250-350 bytes.
	if len(ch) < 180 || len(ch) > 420 {
		t.Errorf("ClientHello size = %d, want 180..420", len(ch))
	}
}

func TestEncodeDecodeAllMessageTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	id := GenerateIdentity(rng, "x", 900)
	msgs := []Message{
		{Type: TypeClientHello, Body: &ClientHello{ServerName: "a.b", ALPN: []string{"doq", "h2"}, SupportedVersions: []Version{VersionTLS13}, PSKTicket: []byte("tick"), EarlyData: true}},
		{Type: TypeServerHello, Body: &ServerHello{Version: VersionTLS13, PSKAccepted: true}},
		{Type: TypeEncryptedExtensions, Body: &EncryptedExtensions{ALPN: "doq", EarlyDataAccepted: true}},
		{Type: TypeCertificate, Body: &Certificate{Name: "x", PublicKey: id.PublicKey, Chain: id.Chain}},
		{Type: TypeCertificateVerify, Body: &CertificateVerify{Signature: make([]byte, 64)}},
		{Type: TypeFinished, Body: &Finished{}},
		{Type: TypeNewSessionTicket, Body: &NewSessionTicket{LifetimeSecs: 604800, Ticket: []byte("ticket-bytes")}},
		{Type: TypeClientKeyExchange, Body: &ClientKeyExchange{}},
		{Type: TypeServerHelloDone, Body: &ServerHelloDone{}},
	}
	for _, m := range msgs {
		enc := EncodeMessage(m)
		got, n, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("%d: %v", m.Type, err)
		}
		if n != len(enc) {
			t.Errorf("%d: consumed %d of %d", m.Type, n, len(enc))
		}
		if got.Type != m.Type {
			t.Errorf("type = %d, want %d", got.Type, m.Type)
		}
	}
}

func TestDecodeTruncatedMessages(t *testing.T) {
	m := Message{Type: TypeServerHello, Body: &ServerHello{Version: VersionTLS13}}
	enc := EncodeMessage(m)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeMessage(enc[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestHKDFDeterministic(t *testing.T) {
	a := hkdfExpand(hkdfExtract([]byte("salt"), []byte("ikm")), "info", 32)
	b := hkdfExpand(hkdfExtract([]byte("salt"), []byte("ikm")), "info", 32)
	if !bytes.Equal(a, b) {
		t.Error("HKDF not deterministic")
	}
	c := hkdfExpand(hkdfExtract([]byte("salt"), []byte("ikm")), "other", 32)
	if bytes.Equal(a, c) {
		t.Error("different labels produced identical output")
	}
	if len(hkdfExpand(a, "x", 100)) != 100 {
		t.Error("expand length mismatch")
	}
}

func TestAEADRoundTripAndTamper(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 12)
	ct := aeadSeal(key, iv, 1, []byte("secret"), []byte("aad"))
	pt, err := aeadOpen(key, iv, 1, ct, []byte("aad"))
	if err != nil || !bytes.Equal(pt, []byte("secret")) {
		t.Fatalf("round trip failed: %v", err)
	}
	if _, err := aeadOpen(key, iv, 2, ct, []byte("aad")); err == nil {
		t.Error("wrong sequence accepted")
	}
	ct[0] ^= 1
	if _, err := aeadOpen(key, iv, 1, ct, []byte("aad")); err == nil {
		t.Error("tampered ciphertext accepted")
	}
}

func TestIdentityChainSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	id := GenerateIdentity(rng, "r.example", 3000)
	if len(id.Chain) != 3000 {
		t.Errorf("chain = %d bytes, want 3000", len(id.Chain))
	}
	tiny := GenerateIdentity(rng, "r.example", 1)
	if len(tiny.Chain) < 100 {
		t.Errorf("minimal chain = %d bytes, implausibly small", len(tiny.Chain))
	}
}

func TestSessionCacheExpiry(t *testing.T) {
	c := NewSessionCache()
	c.Put(&Session{ServerName: "a", IssuedAt: 0, Lifetime: time.Hour})
	if c.Get("a", 30*time.Minute) == nil {
		t.Error("session missing before expiry")
	}
	if c.Get("a", 2*time.Hour) != nil {
		t.Error("session returned after expiry")
	}
	if c.Get("b", 0) != nil {
		t.Error("unknown name returned a session")
	}
}
