package repro

// Cross-stack integration tests: the full pipeline (sim kernel -> netem
// -> TCP/QUIC/TLS -> DNS transports -> resolvers -> measurement
// methodology) exercised end to end under loss and jitter.

import (
	"testing"
	"time"

	"repro/internal/dnsmsg"
	"repro/internal/dox"
	"repro/internal/geo"
	"repro/internal/measure"
	"repro/internal/netem"
	"repro/internal/resolver"
	"repro/internal/stats"
)

func TestEndToEndAllProtocolsUnderLossAndJitter(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           99,
		ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.AS: 1},
		Loss:           0.02, // heavy loss: retransmission machinery must cope
		Jitter:         3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	vp := u.Vantages[0]
	success := map[dox.Protocol]int{}
	const perProto = 6
	u.W.Go(func() {
		for _, proto := range dox.Protocols {
			for i := 0; i < perProto; i++ {
				res := u.Resolvers[i%len(u.Resolvers)]
				c, err := dox.Connect(proto, dox.Options{
					Backend: vp.Backend, Resolver: res.Addr, ServerName: res.Name,
					DoQPort: res.DoQPort,
				})
				if err != nil {
					continue
				}
				q := dnsmsg.NewQuery(uint16(i+1), "integration.example", dnsmsg.TypeA)
				if resp, err := c.Query(&q); err == nil {
					if _, ok := resp.FirstA(); ok {
						success[proto]++
					}
				}
				c.Close()
			}
		}
	})
	u.W.Run()
	for _, proto := range dox.Protocols {
		if success[proto] < perProto-2 {
			t.Errorf("%v: only %d/%d queries succeeded under 2%% loss", proto, success[proto], perProto)
		}
	}
}

// TestCampaignDeterministicGivenSeed runs the same scaled campaign twice
// and expects identical aggregate results — the property that makes the
// whole reproduction reproducible.
func TestCampaignDeterministicGivenSeed(t *testing.T) {
	run := func() map[dox.Protocol]time.Duration {
		u, err := resolver.NewUniverse(resolver.UniverseConfig{
			Seed:           123,
			ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.NA: 1},
			Loss:           0.002,
		})
		if err != nil {
			t.Fatal(err)
		}
		samples, err := measure.RunSingleQuery(measure.SingleQueryConfig{Universe: u})
		if err != nil {
			t.Fatal(err)
		}
		out := map[dox.Protocol][]time.Duration{}
		for _, s := range samples {
			if s.OK {
				out[s.Protocol] = append(out[s.Protocol], s.Handshake)
			}
		}
		med := map[dox.Protocol]time.Duration{}
		for p, xs := range out {
			med[p] = stats.MedianDuration(xs)
		}
		return med
	}
	a, b := run(), run()
	for _, p := range dox.Protocols {
		// Exact equality: the determinism leaks that once forced a
		// tolerance here (map-order task wakeups in transport failure
		// paths, ecdh.GenerateKey drawing from the system DRBG) are
		// fixed, and the campaign engine's byte-identity guarantee
		// depends on them staying fixed.
		if a[p] != b[p] {
			t.Errorf("%v: medians differ across identical runs: %v vs %v", p, a[p], b[p])
		}
	}
}

// TestPaperHeadline reproduces the abstract's two sentences in one test:
// DoQ outperforms DoT and DoH by ~33% for single queries, and falls
// short of DoUDP by ~50% (1 RTT handshake + 1 RTT resolve vs 1 RTT).
func TestPaperHeadline(t *testing.T) {
	u, err := resolver.NewUniverse(resolver.UniverseConfig{
		Seed:           2022,
		ResolverCounts: resolver.ScaledCounts(24),
		Loss:           0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples, err := measure.RunSingleQuery(measure.SingleQueryConfig{Universe: u})
	if err != nil {
		t.Fatal(err)
	}
	total := map[dox.Protocol][]float64{}
	for _, s := range samples {
		if s.OK {
			total[s.Protocol] = append(total[s.Protocol], float64(s.Total))
		}
	}
	med := func(p dox.Protocol) float64 { return stats.Median(total[p]) }

	doq, dot, doh, doudp := med(dox.DoQ), med(dox.DoT), med(dox.DoH), med(dox.DoUDP)
	// "the single query response time is improved by ~33% in comparison
	// to DoT and DoH" — DoQ at 2 RTT vs 3 RTT is a 1/3 improvement.
	for name, other := range map[string]float64{"DoT": dot, "DoH": doh} {
		gain := (other - doq) / other
		if gain < 0.20 || gain > 0.45 {
			t.Errorf("DoQ improves on %s by %.0f%%, want ~33%%", name, gain*100)
		}
	}
	// "DoQ falls short of DoUDP by only ~50%" (2 RTT vs 1 RTT).
	short := (doq - doudp) / doudp
	if short < 0.6 || short > 1.4 {
		t.Errorf("DoQ falls short of DoUDP by %.0f%%, want ~100%% of 1 RTT (paper's ~50%% of total incl. overheads)", short*100)
	}
}

// TestPacketTraceIdenticalGivenSeed is the strongest determinism
// regression test: two same-seed campaigns must emit bit-identical
// packet sequences, not just equal aggregates. It is also the consumer
// of netem's Network.Trace hook — if a nondeterministic source (map
// iteration waking tasks, the system DRBG behind crypto key
// generation) leaks back in, the first diverging packet localizes it.
func TestPacketTraceIdenticalGivenSeed(t *testing.T) {
	type packet struct {
		now     time.Duration
		proto   netem.Proto
		src     string
		payload string
	}
	run := func() []packet {
		u, err := resolver.NewUniverse(resolver.UniverseConfig{
			Seed:           77,
			ResolverCounts: map[geo.Continent]int{geo.EU: 2, geo.AS: 1},
			Loss:           0.01, // loss exercises the retransmission paths
		})
		if err != nil {
			t.Fatal(err)
		}
		var trace []packet
		u.Net.Trace = func(d netem.Datagram, now time.Duration) {
			trace = append(trace, packet{now, d.Proto, d.Src.String(), string(d.Payload)})
		}
		if _, err := measure.RunSingleQuery(measure.SingleQueryConfig{Universe: u}); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("packet counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("first diverging packet at %d: %v %d %s vs %v %d %s",
				i, a[i].now, a[i].proto, a[i].src, b[i].now, b[i].proto, b[i].src)
		}
	}
}
